// Package traffic generates the paper's workload: constant-bit-rate (CBR)
// flows between randomly chosen node pairs. The evaluation uses 20 CBR
// connections sending 512-byte packets at 0.2–2.0 packets per second.
package traffic

import (
	"fmt"
	"math/rand"

	"rcast/internal/phy"
	"rcast/internal/sim"
)

// Connection is one CBR flow.
type Connection struct {
	FlowID uint64
	Src    phy.NodeID
	Dst    phy.NodeID
}

// PickConnections selects n flows uniformly with Src != Dst over nodes
// [0, nodes). Distinct flows may share endpoints, as in the ns-2 cbrgen
// tool. It returns an error for impossible inputs.
func PickConnections(rng *rand.Rand, nodes, n int) ([]Connection, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("traffic: need at least 2 nodes, have %d", nodes)
	}
	if n <= 0 {
		return nil, fmt.Errorf("traffic: need a positive connection count, have %d", n)
	}
	out := make([]Connection, 0, n)
	for i := 0; i < n; i++ {
		src := phy.NodeID(rng.Intn(nodes))
		dst := phy.NodeID(rng.Intn(nodes - 1))
		if dst >= src {
			dst++
		}
		out = append(out, Connection{FlowID: uint64(i + 1), Src: src, Dst: dst})
	}
	return out, nil
}

// CBRConfig parameterizes one CBR source.
type CBRConfig struct {
	// Rate is packets per second (> 0).
	Rate float64
	// PacketBytes is the application payload size.
	PacketBytes int
	// Start and Stop bound packet origination: packets are originated at
	// Start, Start+1/Rate, … strictly before Stop.
	Start, Stop sim.Time
}

// SendFunc originates one application packet.
type SendFunc func(dst phy.NodeID, flowID uint64, payloadBytes int)

// Source is a running CBR generator.
type Source struct {
	sched *sim.Scheduler
	cfg   CBRConfig
	conn  Connection
	send  SendFunc

	interval sim.Time
	sent     uint64
	stopped  bool
}

// StartCBR schedules a CBR source. It returns an error for a non-positive
// rate or packet size.
func StartCBR(sched *sim.Scheduler, cfg CBRConfig, conn Connection, send SendFunc) (*Source, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("traffic: rate must be positive, got %v", cfg.Rate)
	}
	if cfg.PacketBytes <= 0 {
		return nil, fmt.Errorf("traffic: packet size must be positive, got %d", cfg.PacketBytes)
	}
	s := &Source{
		sched:    sched,
		cfg:      cfg,
		conn:     conn,
		send:     send,
		interval: sim.FromSeconds(1 / cfg.Rate),
	}
	if s.interval < sim.Microsecond {
		s.interval = sim.Microsecond
	}
	delay := cfg.Start - sched.Now()
	sched.After(delay, s.tick)
	return s, nil
}

// Sent returns how many packets this source originated.
func (s *Source) Sent() uint64 { return s.sent }

// Stop halts the source before its natural Stop time.
func (s *Source) Stop() { s.stopped = true }

func (s *Source) tick() {
	if s.stopped || s.sched.Now() >= s.cfg.Stop {
		return
	}
	s.sent++
	s.send(s.conn.Dst, s.conn.FlowID, s.cfg.PacketBytes)
	s.sched.After(s.interval, s.tick)
}
