package traffic

import (
	"testing"

	"rcast/internal/phy"
	"rcast/internal/sim"
)

func TestPickConnections(t *testing.T) {
	rng := sim.Stream(1, "traffic")
	conns, err := PickConnections(rng, 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(conns) != 20 {
		t.Fatalf("got %d connections", len(conns))
	}
	seenFlow := make(map[uint64]bool)
	for _, c := range conns {
		if c.Src == c.Dst {
			t.Fatalf("self-connection %+v", c)
		}
		if c.Src < 0 || int(c.Src) >= 100 || c.Dst < 0 || int(c.Dst) >= 100 {
			t.Fatalf("out-of-range endpoint %+v", c)
		}
		if seenFlow[c.FlowID] {
			t.Fatalf("duplicate flow id %d", c.FlowID)
		}
		seenFlow[c.FlowID] = true
	}
}

func TestPickConnectionsErrors(t *testing.T) {
	rng := sim.Stream(1, "traffic")
	if _, err := PickConnections(rng, 1, 5); err == nil {
		t.Error("accepted 1-node network")
	}
	if _, err := PickConnections(rng, 10, 0); err == nil {
		t.Error("accepted zero connections")
	}
}

func TestPickConnectionsDeterministic(t *testing.T) {
	a, _ := PickConnections(sim.Stream(7, "t"), 50, 10)
	b, _ := PickConnections(sim.Stream(7, "t"), 50, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different connections")
		}
	}
}

func TestCBRRateAndBounds(t *testing.T) {
	sched := sim.NewScheduler()
	var times []sim.Time
	var dsts []phy.NodeID
	send := func(dst phy.NodeID, flowID uint64, bytes int) {
		times = append(times, sched.Now())
		dsts = append(dsts, dst)
		if bytes != 512 || flowID != 3 {
			t.Fatalf("send args: bytes=%d flow=%d", bytes, flowID)
		}
	}
	src, err := StartCBR(sched, CBRConfig{
		Rate:        2.0,
		PacketBytes: 512,
		Start:       5 * sim.Second,
		Stop:        10 * sim.Second,
	}, Connection{FlowID: 3, Src: 1, Dst: 2}, send)
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(60 * sim.Second)
	// Packets at 5.0, 5.5, …, 9.5s → 10 packets.
	if len(times) != 10 {
		t.Fatalf("sent %d packets, want 10", len(times))
	}
	if times[0] != 5*sim.Second {
		t.Fatalf("first packet at %v, want 5s", times[0])
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] != 500*sim.Millisecond {
			t.Fatalf("interval %v at packet %d", times[i]-times[i-1], i)
		}
	}
	if times[len(times)-1] >= 10*sim.Second {
		t.Fatal("packet at or after Stop")
	}
	if src.Sent() != 10 {
		t.Fatalf("Sent() = %d", src.Sent())
	}
	for _, d := range dsts {
		if d != 2 {
			t.Fatal("wrong destination")
		}
	}
}

func TestCBRStop(t *testing.T) {
	sched := sim.NewScheduler()
	count := 0
	src, err := StartCBR(sched, CBRConfig{Rate: 1, PacketBytes: 64, Start: 0, Stop: 100 * sim.Second},
		Connection{FlowID: 1, Src: 0, Dst: 1},
		func(phy.NodeID, uint64, int) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(4500 * sim.Millisecond)
	src.Stop()
	sched.RunUntil(100 * sim.Second)
	if count != 5 {
		t.Fatalf("sent %d after Stop, want 5 (t=0..4s)", count)
	}
}

func TestCBRValidation(t *testing.T) {
	sched := sim.NewScheduler()
	noop := func(phy.NodeID, uint64, int) {}
	if _, err := StartCBR(sched, CBRConfig{Rate: 0, PacketBytes: 64}, Connection{}, noop); err == nil {
		t.Error("accepted zero rate")
	}
	if _, err := StartCBR(sched, CBRConfig{Rate: 1, PacketBytes: 0}, Connection{}, noop); err == nil {
		t.Error("accepted zero packet size")
	}
}
