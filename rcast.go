// Package rcast is a discrete-event simulation library reproducing
// "Rcast: A Randomized Communication Scheme for Improving Energy Efficiency
// in MANETs" (Lim, Yu & Das, ICDCS 2005).
//
// The library implements the full protocol stack the paper evaluates —
// IEEE 802.11 DCF with the power saving mechanism (PSM), Dynamic Source
// Routing (DSR), the On-Demand Power Management (ODPM) baseline, and the
// paper's contribution: RandomCast (Rcast) overhearing control — on top of
// a deterministic microsecond-resolution event simulator with random
// waypoint mobility and a collision-aware radio model.
//
// Quick start:
//
//	cfg := rcast.PaperDefaults()
//	cfg.Scheme = rcast.SchemeRcast
//	cfg.PacketRate = 0.4
//	res, err := rcast.Run(cfg)
//	if err != nil { ... }
//	fmt.Printf("PDR %.1f%%, %.0f J\n", 100*res.PDR, res.TotalJoules)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every reproduced table and figure.
package rcast

import (
	"context"
	"io"

	"rcast/internal/core"
	"rcast/internal/fault"
	"rcast/internal/replay"
	"rcast/internal/scenario"
	"rcast/internal/sim"
	"rcast/internal/trace"
)

// Re-exported simulation time. Time values are microseconds of simulated
// time; use the duration constants to build them.
type Time = sim.Time

// Duration constants for Time.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Seconds converts floating-point seconds to a Time.
func Seconds(s float64) Time { return sim.FromSeconds(s) }

// Config describes one simulation run; see PaperDefaults for the paper's
// evaluation setup (§4.1).
type Config = scenario.Config

// Result carries every metric a run measured.
type Result = scenario.Result

// Aggregate summarizes replications of one configuration.
type Aggregate = scenario.Aggregate

// FaultPlan describes deterministic fault injection (node crashes,
// Gilbert–Elliott burst loss, partitions, battery jitter); assign one to
// Config.Faults. See internal/fault for the determinism contract.
type FaultPlan = fault.Plan

// FaultPreset resolves a named fault plan ("" returns nil: no faults).
func FaultPreset(name string) (*FaultPlan, error) { return fault.Preset(name) }

// FaultPresetNames lists the presets FaultPreset accepts, sorted.
func FaultPresetNames() []string { return fault.PresetNames() }

// Scheme selects the protocol stack under test.
type Scheme = scenario.Scheme

// The evaluated schemes. SchemeAlwaysOn, SchemeODPM and SchemeRcast are the
// paper's "802.11", "ODPM" and "Rcast"; SchemePSM is unmodified 802.11 PSM
// with unconditional overhearing; SchemePSMNoOverhear is the naive
// integration with overhearing disabled.
const (
	SchemeAlwaysOn      = scenario.SchemeAlwaysOn
	SchemePSM           = scenario.SchemePSM
	SchemePSMNoOverhear = scenario.SchemePSMNoOverhear
	SchemeODPM          = scenario.SchemeODPM
	SchemeRcast         = scenario.SchemeRcast
)

// Schemes lists all schemes in presentation order.
func Schemes() []Scheme { return scenario.Schemes() }

// Routing selects the network-layer protocol.
type Routing = scenario.Routing

// Routing protocols: DSR (the paper's protocol, default) and AODV (the
// timeout-based alternative contrasted in §1).
const (
	RoutingDSR  = scenario.RoutingDSR
	RoutingAODV = scenario.RoutingAODV
)

// ParseScheme resolves a scheme from its String form ("802.11", "PSM",
// "PSM-no-overhear", "ODPM", "Rcast").
func ParseScheme(name string) (Scheme, error) { return scenario.ParseScheme(name) }

// Policy is an overhearing policy: it chooses the advertised overhearing
// level per packet class (sender side) and decides whether a non-addressed
// listener stays awake (listener side). Set Config.Policy to override a
// scheme's default.
type Policy = core.Policy

// ListenContext carries the listener-side state a Policy may consult.
type ListenContext = core.ListenContext

// Level is an advertised overhearing level (an ATIM subtype, paper §3.2).
type Level = core.Level

// Overhearing levels.
const (
	LevelNone          = core.LevelNone
	LevelRandomized    = core.LevelRandomized
	LevelUnconditional = core.LevelUnconditional
)

// Class is a routing packet class.
type Class = core.Class

// Routing packet classes.
const (
	ClassData = core.ClassData
	ClassRREQ = core.ClassRREQ
	ClassRREP = core.ClassRREP
	ClassRERR = core.ClassRERR
)

// Built-in overhearing policies.
var (
	// PolicyRcast is the paper's evaluated policy: P_R = 1/neighbors for
	// data and RREP, unconditional for RERR.
	PolicyRcast Policy = core.Rcast{}
	// PolicyUnconditional keeps every neighbor awake (unmodified PSM+DSR).
	PolicyUnconditional Policy = core.Unconditional{}
	// PolicyNone disables overhearing entirely.
	PolicyNone Policy = core.None{}
	// PolicySenderID boosts overhearing of senders not heard recently
	// (paper §5 future work).
	PolicySenderID Policy = core.SenderID{}
	// PolicyBattery scales overhearing by remaining battery energy (§5).
	PolicyBattery Policy = core.Battery{}
	// PolicyMobility damps overhearing under neighbor churn (§5).
	PolicyMobility Policy = core.Mobility{}
	// PolicyCombined folds all four §3.2 factors together.
	PolicyCombined Policy = core.Combined{}
)

// ParsePolicy resolves a registered overhearing policy by name ("rcast",
// "unconditional", "none", "sender-id", "battery", "mobility",
// "combined"). Prefer setting Config.PolicyName over Config.Policy: named
// policies canonically encode, so they cache, sweep and replay.
func ParsePolicy(name string) (Policy, error) { return core.ParsePolicy(name) }

// PolicyNames lists the registered overhearing policy names in
// presentation order.
func PolicyNames() []string { return core.PolicyNames() }

// Tracing: set Config.Trace to observe the packet-lifecycle event stream
// — routing, MAC (ATIM/overhearing/sleep-wake) and PHY-loss events, each
// carrying a run-local sequence number and, where applicable, the packet
// UID "src:flow:seq". See tools/tracediff for diffing two runs' streams.
type (
	// TraceEvent is one traced occurrence.
	TraceEvent = trace.Event
	// TraceSink consumes trace events.
	TraceSink = trace.Sink
	// TraceRing retains the most recent events in memory.
	TraceRing = trace.Ring
	// TraceRecorder retains every event in memory, in order.
	TraceRecorder = trace.Recorder
	// TraceMulti fans events out to several sinks.
	TraceMulti = trace.Multi
)

// NewTraceRing returns a sink retaining the most recent capacity events.
func NewTraceRing(capacity int) *TraceRing { return trace.NewRing(capacity) }

// NewTraceWriter returns a sink streaming events as NDJSON to w.
func NewTraceWriter(w io.Writer) TraceSink { return trace.NewWriter(w) }

// NewTraceRecorder returns an unbounded in-memory sink (see trace.Recorder).
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// ReadTraceEvents parses an NDJSON trace stream as written by NewTraceWriter.
func ReadTraceEvents(r io.Reader) ([]TraceEvent, error) { return trace.ReadEvents(r) }

// PaperDefaults returns the paper's evaluation configuration (§4.1):
// 100 nodes on 1500 m × 300 m, 250 m range at 2 Mbps, 20 CBR connections
// of 512-byte packets, random waypoint up to 20 m/s, 1125 s runs, 250 ms
// beacon intervals with 50 ms ATIM windows.
func PaperDefaults() Config { return scenario.PaperDefaults() }

// ErrCanceled marks a run stopped before completion through its context
// (cooperative cancellation). Distinguish a user cancel from an expired
// deadline with errors.Is(err, context.Canceled) /
// errors.Is(err, context.DeadlineExceeded).
var ErrCanceled = scenario.ErrCanceled

// Run executes one simulation and returns its metrics.
func Run(cfg Config) (*Result, error) { return scenario.Run(cfg) }

// Replay re-executes a recorded run from its captured trace
// (internal/replay): the trace's stochastic decisions — overhearing
// lotteries, fault-injected losses, crash firings — are injected at the
// corresponding decision sites, the run is re-executed, and the replayed
// event stream is verified byte-identical to the recording (a divergence
// is an error naming the first differing event). cfg must be the
// recorded run's configuration, sinks excluded. Returns the replayed
// result and event stream.
func Replay(cfg Config, recorded []TraceEvent) (*Result, []TraceEvent, error) {
	return replay.Run(cfg, recorded)
}

// AggregateResults folds already-computed replication results, in
// replication order, into an Aggregate — the merge half of
// RunReplications, exposed so tooling that obtains results by other means
// (replay, caches) can aggregate bit-identically.
func AggregateResults(results []*Result) *Aggregate {
	return scenario.AggregateResults(results)
}

// RunContext is Run under a cancellation context: the event loop polls
// ctx cooperatively (every few thousand events) and a canceled run
// returns an error wrapping ErrCanceled instead of partial metrics.
// Runs whose context never fires are byte-identical to Run.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	return scenario.RunContext(ctx, cfg)
}

// RunReplications runs cfg reps times — replication i with the seed
// sim.ReplicationSeed(cfg.Seed, i), a splitmix64-style mix keeping the
// per-replication RNG streams disjoint across base seeds — and aggregates
// the headline metrics across replications. Replication 0 runs with
// cfg.Seed itself, so a single-replication call is byte-identical to Run.
func RunReplications(cfg Config, reps int) (*Aggregate, error) {
	return scenario.RunReplications(cfg, reps)
}

// RunReplicationsWorkers is RunReplications with the replications fanned
// out across up to workers goroutines (workers <= 0 selects
// runtime.GOMAXPROCS(0)). Every replication carries its own derived seed,
// so the aggregate is identical for every worker count.
func RunReplicationsWorkers(cfg Config, reps, workers int) (*Aggregate, error) {
	return scenario.RunReplicationsWorkers(cfg, reps, workers)
}

// RunReplicationsContext is RunReplicationsWorkers under a cancellation
// context; see RunContext for the cancellation semantics.
func RunReplicationsContext(ctx context.Context, cfg Config, reps, workers int) (*Aggregate, error) {
	return scenario.RunReplicationsContext(ctx, cfg, reps, workers)
}
