package rcast_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"rcast"
)

// smallConfig is a fast public-API scenario.
func smallConfig(scheme rcast.Scheme) rcast.Config {
	cfg := rcast.PaperDefaults()
	cfg.Scheme = scheme
	cfg.Nodes = 25
	cfg.FieldW = 750
	cfg.Connections = 5
	cfg.Duration = 40 * rcast.Second
	cfg.Pause = 20 * rcast.Second
	return cfg
}

func TestPublicRunRoundTrip(t *testing.T) {
	res, err := rcast.Run(smallConfig(rcast.SchemeRcast))
	if err != nil {
		t.Fatal(err)
	}
	if res.Originated == 0 || res.Delivered == 0 {
		t.Fatalf("no traffic flowed: %+v", res)
	}
	if res.PDR <= 0 || res.PDR > 1 {
		t.Fatalf("PDR = %v", res.PDR)
	}
	if len(res.PerNodeJoules) != 25 {
		t.Fatalf("PerNodeJoules len = %d", len(res.PerNodeJoules))
	}
}

func TestPublicReplications(t *testing.T) {
	agg, err := rcast.RunReplications(smallConfig(rcast.SchemeODPM), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Results) != 2 || agg.PDR.N() != 2 {
		t.Fatalf("aggregate incomplete: %d results", len(agg.Results))
	}
}

func TestPublicSchemesAndParsing(t *testing.T) {
	if len(rcast.Schemes()) != 5 {
		t.Fatalf("Schemes() = %v", rcast.Schemes())
	}
	s, err := rcast.ParseScheme("Rcast")
	if err != nil || s != rcast.SchemeRcast {
		t.Fatalf("ParseScheme = %v, %v", s, err)
	}
	if _, err := rcast.ParseScheme("bogus"); err == nil {
		t.Fatal("ParseScheme accepted junk")
	}
}

func TestPublicTimeHelpers(t *testing.T) {
	if rcast.Seconds(1.5) != 1500*rcast.Millisecond {
		t.Fatal("Seconds conversion broken")
	}
	if rcast.Second != 1000*rcast.Millisecond || rcast.Millisecond != 1000*rcast.Microsecond {
		t.Fatal("duration constants broken")
	}
}

// alwaysPolicy is a user-defined policy exercising the public Policy
// surface: it always overhears (equivalent to unconditional).
type alwaysPolicy struct{}

func (alwaysPolicy) AdvertiseLevel(rcast.Class) rcast.Level { return rcast.LevelUnconditional }
func (alwaysPolicy) ShouldOverhear(*rand.Rand, rcast.Level, rcast.ListenContext) bool {
	return true
}
func (alwaysPolicy) Name() string { return "always" }

func TestPublicCustomPolicy(t *testing.T) {
	base, err := rcast.Run(smallConfig(rcast.SchemeRcast))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(rcast.SchemeRcast)
	cfg.Policy = alwaysPolicy{}
	greedy, err := rcast.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.TotalJoules <= base.TotalJoules {
		t.Fatalf("always-overhear policy (%.0f J) should cost more than Rcast (%.0f J)",
			greedy.TotalJoules, base.TotalJoules)
	}
}

func TestPublicBuiltinPolicies(t *testing.T) {
	policies := []rcast.Policy{
		rcast.PolicyRcast, rcast.PolicyUnconditional, rcast.PolicyNone,
		rcast.PolicySenderID, rcast.PolicyBattery, rcast.PolicyMobility, rcast.PolicyCombined,
	}
	seen := make(map[string]bool)
	for _, p := range policies {
		if p == nil || p.Name() == "" || seen[p.Name()] {
			t.Fatalf("bad policy export %v", p)
		}
		seen[p.Name()] = true
	}
	if rcast.PolicyRcast.AdvertiseLevel(rcast.ClassRERR) != rcast.LevelUnconditional {
		t.Fatal("re-exported levels/classes disagree")
	}
}

func TestPublicPolicyRegistry(t *testing.T) {
	names := rcast.PolicyNames()
	if len(names) == 0 {
		t.Fatal("no registered policy names")
	}
	for _, name := range names {
		p, err := rcast.ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("ParsePolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := rcast.ParsePolicy("fixed-0.50"); err == nil {
		t.Fatal("unregistered policy name accepted")
	}
}

func TestPublicFaultPresets(t *testing.T) {
	names := rcast.FaultPresetNames()
	if len(names) == 0 {
		t.Fatal("no fault presets")
	}
	for _, name := range names {
		if plan, err := rcast.FaultPreset(name); err != nil || plan == nil {
			t.Fatalf("FaultPreset(%q) = %v, %v", name, plan, err)
		}
	}
	if plan, err := rcast.FaultPreset(""); err != nil || plan != nil {
		t.Fatalf("empty preset = %v, %v; want nil, nil", plan, err)
	}
	if _, err := rcast.FaultPreset("warp"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestPublicRunContextCancel(t *testing.T) {
	cfg := smallConfig(rcast.SchemeRcast)
	cfg.Duration = 3600 * rcast.Second
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := rcast.RunContext(ctx, cfg)
	if res != nil || err == nil {
		t.Fatalf("canceled run returned res=%v err=%v", res, err)
	}
	if !errors.Is(err, rcast.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not expose ErrCanceled + context.Canceled", err)
	}
}

func TestPublicRunReplicationsContext(t *testing.T) {
	cfg := smallConfig(rcast.SchemeODPM)
	want, err := rcast.RunReplications(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rcast.RunReplicationsContext(context.Background(), cfg, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.PDR.Mean() != want.PDR.Mean() || got.TotalJoules.Mean() != want.TotalJoules.Mean() {
		t.Fatal("context path diverges from RunReplications")
	}
	workers, err := rcast.RunReplicationsWorkers(cfg, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if workers.PDR.Mean() != want.PDR.Mean() || workers.TotalJoules.Mean() != want.TotalJoules.Mean() {
		t.Fatal("worker path diverges from RunReplications")
	}
}

// TestPublicTracing drives the trace surface through the public API: a
// writer-backed run streams NDJSON that parses back, a ring and a
// recorder capture the same run without changing its results, and the
// traced results match an untraced run of the identical config.
func TestPublicTracing(t *testing.T) {
	cfg := smallConfig(rcast.SchemeRcast)
	plain, err := rcast.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	ring := rcast.NewTraceRing(64)
	rec := rcast.NewTraceRecorder()
	cfg.Trace = rcast.TraceMulti{rcast.NewTraceWriter(&buf), ring, rec}
	traced, err := rcast.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Delivered != plain.Delivered || traced.TotalJoules != plain.TotalJoules {
		t.Fatalf("tracing perturbed the run: %+v vs %+v", traced, plain)
	}

	evs, err := rcast.ReadTraceEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 || len(evs) != len(rec.Events()) {
		t.Fatalf("writer carried %d events, recorder %d", len(evs), len(rec.Events()))
	}
	if ring.Total() != uint64(len(evs)) {
		t.Fatalf("ring saw %d events, writer %d", ring.Total(), len(evs))
	}
	if got := len(ring.Events()); got != 64 {
		t.Fatalf("ring retained %d events, want its capacity 64", got)
	}
}

func TestPublicReplay(t *testing.T) {
	cfg := smallConfig(rcast.SchemeRcast)
	rec := rcast.NewTraceRecorder()
	cfg.Trace = rec
	orig, err := rcast.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	replayCfg := smallConfig(rcast.SchemeRcast)
	res, replayed, err := rcast.Replay(replayCfg, rec.Events())
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(replayed) != len(rec.Events()) {
		t.Fatalf("replayed %d events, recorded %d", len(replayed), len(rec.Events()))
	}
	if res.Delivered != orig.Delivered || res.TotalJoules != orig.TotalJoules {
		t.Fatalf("replay did not reproduce the run: %+v vs %+v", res, orig)
	}

	agg := rcast.AggregateResults([]*rcast.Result{res})
	if agg.PDR.Mean() != res.PDR {
		t.Fatalf("aggregate of one result: mean PDR %v, PDR %v", agg.PDR.Mean(), res.PDR)
	}

	// A truncated recording must be detected, not silently accepted.
	if _, _, err := rcast.Replay(replayCfg, rec.Events()[:len(rec.Events())/2]); err == nil {
		t.Fatal("replay of a truncated recording succeeded")
	}
}
