#!/usr/bin/env bash
# CI gate: vet, build, race-enabled tests, and a benchmark smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke =="
go test -run '^$' -bench 'BenchmarkFullRunRcast$|BenchmarkChannelTransmit' -benchtime 1x .

echo "ci: OK"
