#!/usr/bin/env bash
# CI gate: vet, shadow lint, build, race-enabled tests, a benchmark smoke
# run, and an invariant-audited experiment smoke under the race detector.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== shadowcheck =="
go run ./tools/shadowcheck .

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke =="
go test -run '^$' -bench 'BenchmarkFullRunRcast$|BenchmarkChannelTransmit' -benchtime 1x .

echo "== audited smoke (race) =="
go run -race ./cmd/rcast-bench -profile quick -only table1 -reps 1 -audit > /dev/null

echo "ci: OK"
