#!/usr/bin/env bash
# CI gate: vet, shadow lint, build, race-enabled tests, a short fuzz pass
# over the MAC and route-cache targets, the coverage gate, a benchmark
# smoke run, invariant-audited experiment smokes (clean and
# fault-injected) under the race detector, and the end-to-end rcast-serve
# smoke (race-built daemon: submit/poll/parity/cache/429/drain).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== shadowcheck =="
go run ./tools/shadowcheck .

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke =="
go test -run '^$' -fuzz 'FuzzPSMOperations' -fuzztime 10s ./internal/mac
go test -run '^$' -fuzz 'FuzzCacheOperations' -fuzztime 10s ./internal/routing/dsr

echo "== coverage gate =="
go run ./tools/covergate

echo "== bench smoke =="
go test -run '^$' -bench 'BenchmarkFullRunRcast$|BenchmarkChannelTransmit' -benchtime 1x .

echo "== audited smoke (race) =="
go run -race ./cmd/rcast-bench -profile quick -only table1 -reps 1 -audit > /dev/null

echo "== audited fault-sweep smoke (race) =="
go run -race ./cmd/rcast-bench -profile quick -only a8 -reps 1 -audit > /dev/null

echo "== serve smoke (race) =="
go run ./tools/servesmoke

echo "ci: OK"
