#!/usr/bin/env bash
# CI gate: vet, shadow lint, build, race-enabled tests, a short fuzz pass
# over the MAC, route-cache, scheduler-wheel and trace-reader targets, the
# coverage gate, the calibrated perf-smoke gate, a benchmark smoke run, a
# tracediff smoke (audit inert / seeds diverge), the golden-trace corpus
# gate (every committed cell re-runs and replays byte-identically), a
# record/replay round-trip smoke through the rcast-sim CLI,
# invariant-audited experiment smokes (clean and fault-injected) under the
# race detector, the end-to-end rcast-serve smoke (race-built daemon:
# submit/poll/parity/cache/429/drain), and the fleet smoke (coordinator +
# two race-built workers: sweep sharding, peer-cache fill, serial
# byte-parity).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== shadowcheck =="
go run ./tools/shadowcheck .

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke =="
go test -run '^$' -fuzz 'FuzzPSMOperations' -fuzztime 10s ./internal/mac
go test -run '^$' -fuzz 'FuzzCacheOperations' -fuzztime 10s ./internal/routing/dsr
go test -run '^$' -fuzz 'FuzzSchedulerWheel' -fuzztime 10s ./internal/sim
go test -run '^$' -fuzz 'FuzzReadEvents' -fuzztime 10s ./internal/trace
go test -run '^$' -fuzz 'FuzzPropagationGrid' -fuzztime 10s ./internal/phy

echo "== coverage gate =="
go run ./tools/covergate

echo "== perf smoke =="
# Calibrated 3-node-cell gate: fails on >30% event-kernel slowdown
# relative to tools/perfsmoke/baseline.json (see that tool for how the
# score is normalized across machines).
go run ./tools/perfsmoke

echo "== bench smoke =="
go test -run '^$' -bench 'BenchmarkFullRunRcast$|BenchmarkChannelTransmit' -benchtime 1x .

echo "== tracediff smoke =="
# The audit must be observation-only: trace A (plain) against B (audited)
# and require byte-for-byte identical event streams (exit 0).
go run ./tools/tracediff -nodes 25 -duration 30s -connections 5 -audit-b
# Two seeds of one config must diverge, and tracediff must say so with
# exit status 1 (2 would mean it errored instead of diffing).
rc=0
go run ./tools/tracediff -nodes 25 -duration 30s -connections 5 -seed-b 2 > /dev/null || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "tracediff: want exit 1 for diverging seeds, got $rc" >&2
  exit 1
fi

echo "== golden-trace corpus gate =="
# Every committed corpus cell must re-run byte-identically at HEAD, replay
# byte-identically from its own golden trace, and (marked cells) match the
# artifact rcast-serve stores. A behavioral change that moves a golden
# fails here with the first divergent event; regenerate deliberately with
# `go run ./tools/tracegate -update`.
go run ./tools/tracegate

echo "== replay round-trip smoke =="
# Record a run through the CLI, replay it from the trace, and require both
# the report and the re-emitted trace to be byte-identical to the original.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/rcast-sim -nodes 12 -duration 12s -static -connections 3 -seed 4 \
  -trace "$tmpdir/rec.ndjson" > "$tmpdir/rec.out"
go run ./cmd/rcast-sim -nodes 12 -duration 12s -static -connections 3 -seed 4 \
  -replay "$tmpdir/rec.ndjson" -trace "$tmpdir/rep.ndjson" > "$tmpdir/rep.out"
cmp "$tmpdir/rec.out" "$tmpdir/rep.out"
cmp "$tmpdir/rec.ndjson" "$tmpdir/rep.ndjson"
# Same round-trip under a random channel + non-default mobility: the
# chan-lost decision stream must replay the faded run byte-identically.
go run ./cmd/rcast-sim -nodes 12 -duration 12s -connections 3 -seed 4 \
  -channel fading -mobility gauss-markov \
  -trace "$tmpdir/fade.ndjson" > "$tmpdir/fade.out"
go run ./cmd/rcast-sim -nodes 12 -duration 12s -connections 3 -seed 4 \
  -channel fading -mobility gauss-markov \
  -replay "$tmpdir/fade.ndjson" -trace "$tmpdir/fade2.ndjson" > "$tmpdir/fade2.out"
cmp "$tmpdir/fade.out" "$tmpdir/fade2.out"
cmp "$tmpdir/fade.ndjson" "$tmpdir/fade2.ndjson"
# And under a named overhearing policy at reduced transmit power with
# finite batteries: the registry-selected policy's lottery stream and the
# power-scaled energy accounting must round-trip byte-identically too.
go run ./cmd/rcast-sim -nodes 12 -duration 12s -static -connections 3 -seed 4 \
  -policy battery -battery 2000 -tx-power -3 \
  -trace "$tmpdir/pol.ndjson" > "$tmpdir/pol.out"
go run ./cmd/rcast-sim -nodes 12 -duration 12s -static -connections 3 -seed 4 \
  -policy battery -battery 2000 -tx-power -3 \
  -replay "$tmpdir/pol.ndjson" -trace "$tmpdir/pol2.ndjson" > "$tmpdir/pol2.out"
cmp "$tmpdir/pol.out" "$tmpdir/pol2.out"
cmp "$tmpdir/pol.ndjson" "$tmpdir/pol2.ndjson"

echo "== audited smoke (race) =="
go run -race ./cmd/rcast-bench -profile quick -only table1 -reps 1 -audit > /dev/null

echo "== audited fault-sweep smoke (race) =="
go run -race ./cmd/rcast-bench -profile quick -only a8 -reps 1 -audit > /dev/null

echo "== audited channel-sweep smoke (race) =="
go run -race ./cmd/rcast-bench -profile quick -only a9 -reps 1 -audit > /dev/null

echo "== audited tx-power-sweep smoke (race) =="
go run -race ./cmd/rcast-bench -profile quick -only a10 -reps 1 -audit > /dev/null

echo "== serve smoke (race) =="
go run ./tools/servesmoke

echo "== fleet smoke (race) =="
go run ./tools/fleetsmoke

echo "ci: OK"
