// Command covergate enforces two coverage rules against a committed
// baseline so test debt cannot creep in silently:
//
//   - floor packages must stay at or above their hard minimum statement
//     coverage regardless of what the baseline says: rcast/internal/fault
//     (the fault layer's failure modes only surface under rare schedules,
//     so untested branches there are disproportionately dangerous) and
//     rcast/internal/replay (a replay engine that silently stops checking
//     decisions defeats the golden-trace gate built on top of it), both
//     at 85.0%;
//   - no package may drop more than 2.0 points below the figure recorded
//     in coverage_baseline.txt. Small jitter from refactors passes; a
//     change that orphans a meaningful chunk of a package does not.
//
// It runs `go test -cover ./...` itself, parses the per-package summary
// lines, and exits 1 on any violation. Packages without test files are
// skipped. A package that is new since the baseline is reported but does
// not fail the gate — regenerate the baseline to start tracking it.
//
// Usage:
//
//	go run ./tools/covergate          # enforce against coverage_baseline.txt
//	go run ./tools/covergate -write   # regenerate the baseline (floor still enforced)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

const (
	baselineFile = "coverage_baseline.txt"
	maxDrop      = 2.0
)

// floors are hard per-package minimums enforced on every run, independent
// of the committed baseline (the baseline only catches drops relative to
// itself; a floor pins an absolute bar for subsystems whose untested
// branches are disproportionately dangerous).
var floors = map[string]float64{
	"rcast/internal/fault":       85.0,
	"rcast/internal/propagation": 85.0,
	"rcast/internal/replay":      85.0,
}

// coverLine matches the summary go test prints per covered package, e.g.
//
//	ok  	rcast/internal/fault	0.31s	coverage: 92.5% of statements
var coverLine = regexp.MustCompile(`^ok\s+(\S+)\s+.*coverage:\s+([0-9.]+)% of statements`)

func main() {
	write := flag.Bool("write", false, "regenerate "+baselineFile+" from the current run instead of comparing")
	flag.Parse()

	current, err := measure()
	if err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(1)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "covergate: no coverage lines parsed from `go test -cover ./...`")
		os.Exit(1)
	}

	failed := false
	for _, pkg := range sortedKeys(floors) {
		floor := floors[pkg]
		if pct, ok := current[pkg]; !ok {
			fmt.Fprintf(os.Stderr, "covergate: FAIL %s reported no coverage (floor %.1f%%)\n", pkg, floor)
			failed = true
		} else if pct < floor {
			fmt.Fprintf(os.Stderr, "covergate: FAIL %s coverage %.1f%% below floor %.1f%%\n", pkg, pct, floor)
			failed = true
		}
	}

	if *write {
		if failed {
			os.Exit(1)
		}
		if err := writeBaseline(current); err != nil {
			fmt.Fprintln(os.Stderr, "covergate:", err)
			os.Exit(1)
		}
		fmt.Printf("covergate: wrote %s (%d packages)\n", baselineFile, len(current))
		return
	}

	baseline, err := readBaseline()
	if err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(1)
	}
	for _, pkg := range sortedKeys(current) {
		pct := current[pkg]
		base, known := baseline[pkg]
		switch {
		case !known:
			fmt.Printf("covergate: note: %s (%.1f%%) not in baseline; run -write to track it\n", pkg, pct)
		case base-pct > maxDrop:
			fmt.Fprintf(os.Stderr, "covergate: FAIL %s coverage %.1f%% dropped %.1f points from baseline %.1f%% (max %.1f)\n",
				pkg, pct, base-pct, base, maxDrop)
			failed = true
		}
	}
	for _, pkg := range sortedKeys(baseline) {
		if _, ok := current[pkg]; !ok {
			fmt.Printf("covergate: note: baseline package %s no longer reports coverage\n", pkg)
		}
	}
	if failed {
		os.Exit(1)
	}
	var floorNotes []string
	for _, pkg := range sortedKeys(floors) {
		floorNotes = append(floorNotes, fmt.Sprintf("%s at %.1f%% >= %.1f%%", pkg, current[pkg], floors[pkg]))
	}
	fmt.Printf("covergate: ok (%d packages, %s)\n", len(current), strings.Join(floorNotes, ", "))
}

// measure runs the coverage build and returns package -> percent. The test
// output itself streams to stderr so a compile or test failure is visible;
// only the summary lines are parsed.
func measure() (map[string]float64, error) {
	cmd := exec.Command("go", "test", "-cover", "./...")
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Stderr.Write(ee.Stderr)
		}
		os.Stderr.Write(out)
		return nil, fmt.Errorf("go test -cover failed: %w", err)
	}
	got := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		m := coverLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		pct, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad coverage %q for %s", m[2], m[1])
		}
		got[m[1]] = pct
	}
	return got, sc.Err()
}

func readBaseline() (map[string]float64, error) {
	f, err := os.Open(baselineFile)
	if err != nil {
		return nil, fmt.Errorf("open %s (run `go run ./tools/covergate -write` to create it): %w", baselineFile, err)
	}
	defer f.Close()
	base := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s: malformed line %q", baselineFile, line)
		}
		pct, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad percent in %q", baselineFile, line)
		}
		base[fields[0]] = pct
	}
	return base, sc.Err()
}

func writeBaseline(current map[string]float64) error {
	var b strings.Builder
	b.WriteString("# Statement coverage baseline, one `package percent` per line.\n")
	b.WriteString("# Regenerate with: go run ./tools/covergate -write\n")
	for _, pkg := range sortedKeys(current) {
		fmt.Fprintf(&b, "%s %.1f\n", pkg, current[pkg])
	}
	return os.WriteFile(baselineFile, []byte(b.String()), 0o644)
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
