// Command fleetsmoke is the end-to-end exercise of rcast-serve's fleet
// mode that scripts/ci.sh runs: it builds the real binary with the race
// detector, boots two workers plus a coordinator on ephemeral ports,
// pre-warms one sweep cell on a worker's cache, drives a small parameter
// sweep through the coordinator over actual HTTP, and verifies that the
// aggregate sweep document is byte-identical to computing every cell
// serially through the library path the CLI tools use, that the
// pre-warmed cell was served through the peer-cache probe (nonzero fleet
// cache-hit counter, one fewer engine run), and that /metrics reports
// both workers up.
//
// Usage:
//
//	go run ./tools/fleetsmoke
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"rcast"
	"rcast/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("fleetsmoke: OK")
}

// sweepReq is the small sweep driven through the fleet: 2 schemes × 2
// mobility points × 2 channels = 8 cells at quick scale. The fading axis
// makes the parity check below also prove that a cell under a random
// propagation model round-trips byte-identically through the fleet.
func sweepReq() serve.SweepRequest {
	return serve.SweepRequest{
		Schemes:     []string{"802.11", "Rcast"},
		PausesSec:   []float64{0, -1},
		Channels:    []string{"disk", "fading"},
		Nodes:       12,
		Connections: 3,
		DurationSec: 10,
		Reps:        1,
	}
}

func run() error {
	tmp, err := os.MkdirTemp("", "fleetsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "rcast-serve")
	build := exec.Command("go", "build", "-race", "-o", bin, "./cmd/rcast-serve")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build rcast-serve: %w", err)
	}

	workerA, err := startDaemon(bin, "workerA", "-workers", "1", "-queue", "8")
	if err != nil {
		return err
	}
	defer workerA.kill()
	workerB, err := startDaemon(bin, "workerB", "-workers", "1", "-queue", "8")
	if err != nil {
		return err
	}
	defer workerB.kill()
	coord, err := startDaemon(bin, "coord", "-workers", "2", "-queue", "8",
		"-coordinator", workerA.base+","+workerB.base)
	if err != nil {
		return err
	}
	defer coord.kill()

	req := sweepReq()
	cells, err := req.Cells()
	if err != nil {
		return err
	}

	// Pre-warm the last cell on worker B so the coordinator must find it
	// via the HEAD probe against a worker cache instead of recomputing.
	warm := cells[len(cells)-1]
	warmBody, err := json.Marshal(warm.Req)
	if err != nil {
		return err
	}
	if err := workerB.runJob(string(warmBody)); err != nil {
		return fmt.Errorf("pre-warm cell on worker B: %w", err)
	}
	fmt.Println("fleetsmoke: pre-warmed 1 of", len(cells), "cells on worker B")

	// Drive the sweep through the coordinator.
	sweepBody, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(coord.base+"/api/v1/sweeps", "application/json", bytes.NewReader(sweepBody))
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit sweep: HTTP %d (%s)", resp.StatusCode, raw)
	}
	var st serve.SweepStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("decode sweep submit response %q: %w", raw, err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			return fmt.Errorf("sweep %s still %s", st.ID, st.State)
		}
		time.Sleep(20 * time.Millisecond)
		if st, err = coord.sweepStatus(st.ID); err != nil {
			return err
		}
	}
	if st.State != serve.StateDone {
		return fmt.Errorf("sweep ended %s: %s", st.State, st.Error)
	}
	if st.PeerHits == 0 {
		return fmt.Errorf("sweep completed without a peer cache hit: %+v", st)
	}

	resp, err = http.Get(coord.base + "/api/v1/sweeps/" + st.ID + "/result")
	if err != nil {
		return err
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("sweep result: HTTP %d (%s)", resp.StatusCode, got)
	}

	// Parity: every cell run serially through the library path must
	// assemble into the same aggregate document, byte for byte.
	results := make([][]byte, len(cells))
	for i, c := range cells {
		cfg, reps, err := c.Req.Config()
		if err != nil {
			return err
		}
		agg, err := rcast.RunReplicationsContext(context.Background(), cfg, reps, 1)
		if err != nil {
			return err
		}
		if results[i], err = serve.MarshalResult(c.Key, reps, agg); err != nil {
			return err
		}
	}
	want, err := serve.MarshalSweepResult(serve.SweepKey(cells), cells, results)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("fleet sweep diverges from the serial path (%d vs %d bytes)", len(got), len(want))
	}
	fmt.Println("fleetsmoke: parity ok, fleet sweep byte-identical to serial path")

	// Fleet metrics: the warm cell arrived via peer cache, the rest were
	// computed, and both workers stayed dispatchable.
	page, err := coord.metricsPage()
	if err != nil {
		return err
	}
	for _, wantLine := range []string{
		`rcast_serve_fleet_cells_total{source="peer_cache"} 1`,
		fmt.Sprintf(`rcast_serve_fleet_cells_total{source="computed"} %d`, len(cells)-1),
		fmt.Sprintf("rcast_serve_fleet_worker_up{worker=%q} 1", workerA.base),
		fmt.Sprintf("rcast_serve_fleet_worker_up{worker=%q} 1", workerB.base),
		`rcast_serve_sweeps_total{state="done"} 1`,
	} {
		if !strings.Contains(page, wantLine) {
			return fmt.Errorf("coordinator metrics missing %q:\n%s", wantLine, page)
		}
	}
	fmt.Println("fleetsmoke: metrics ok, peer cache hit counted and both workers up")

	// The faded cells executed on the workers; at least one worker must
	// report runs under the fading label (the coordinator itself only
	// dispatches, so its own runs_total stays disk-only or empty).
	pageA, err := workerA.metricsPage()
	if err != nil {
		return err
	}
	pageB, err := workerB.metricsPage()
	if err != nil {
		return err
	}
	if !strings.Contains(pageA+pageB, `rcast_serve_runs_total{channel="fading",policy="rcast"}`) {
		return fmt.Errorf("no worker reported fading-channel runs:\nworkerA:\n%s\nworkerB:\n%s", pageA, pageB)
	}
	fmt.Println("fleetsmoke: fading cells executed and labeled in worker metrics")
	return nil
}

// daemon wraps one running rcast-serve process.
type daemon struct {
	name string
	cmd  *exec.Cmd
	base string // http://host:port
}

// startDaemon boots the binary on an ephemeral port and waits for a
// healthy /healthz. The listen address is parsed from the daemon's own
// startup log line.
func startDaemon(bin, name string, extraArgs ...string) (*daemon, error) {
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintf(os.Stderr, "  [%s] %s\n", name, line)
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j > 0 {
					select {
					case addrCh <- rest[:j]:
					default:
					}
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("%s never logged its listen address", name)
	}
	d := &daemon{name: name, cmd: cmd, base: "http://" + addr}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d, nil
			}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			return nil, fmt.Errorf("%s never became healthy", name)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill hard-stops the daemon (cleanup path only).
func (d *daemon) kill() { _ = d.cmd.Process.Kill(); _, _ = d.cmd.Process.Wait() }

// runJob submits one job and waits for it to finish successfully.
func (d *daemon) runJob(body string) error {
	resp, err := http.Post(d.base+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("submit: HTTP %d (%s)", resp.StatusCode, raw)
	}
	var st serve.Status
	if err := json.Unmarshal(raw, &st); err != nil {
		return err
	}
	deadline := time.Now().Add(2 * time.Minute)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s", st.ID, st.State)
		}
		time.Sleep(20 * time.Millisecond)
		r2, err := http.Get(d.base + "/api/v1/jobs/" + st.ID)
		if err != nil {
			return err
		}
		err = json.NewDecoder(r2.Body).Decode(&st)
		r2.Body.Close()
		if err != nil {
			return err
		}
	}
	if st.State != serve.StateDone {
		return fmt.Errorf("job ended %s: %s", st.State, st.Error)
	}
	return nil
}

func (d *daemon) sweepStatus(id string) (serve.SweepStatus, error) {
	resp, err := http.Get(d.base + "/api/v1/sweeps/" + id)
	if err != nil {
		return serve.SweepStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.SweepStatus{}, fmt.Errorf("sweep status %s: HTTP %d", id, resp.StatusCode)
	}
	var st serve.SweepStatus
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func (d *daemon) metricsPage() (string, error) {
	resp, err := http.Get(d.base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	page, err := io.ReadAll(resp.Body)
	return string(page), err
}
