// Command perfsmoke is the CI performance gate for the event kernel: it
// runs a small fixed simulation (a 3-node cell with steady CBR traffic)
// and fails if it got more than 30% slower than the committed baseline.
//
// Raw wall-clock time is useless as a committed number — CI machines
// differ by far more than any regression worth catching. Instead the gate
// normalizes: it times a fixed pure-Go calibration workload (the retained
// heap-oracle scheduler churning a large timer population) on the same
// machine in the same process, and scores the simulation as
//
//	score = calibration_time / simulation_time
//
// Both workloads are dominated by the same kind of work (pointer-heavy
// event dispatch), so the ratio is stable across machines while still
// moving one-for-one with real event-kernel regressions. Best-of-3 runs on
// both sides squeeze out scheduler noise.
//
// Usage:
//
//	go run ./tools/perfsmoke          # enforce against tools/perfsmoke/baseline.json
//	go run ./tools/perfsmoke -write   # regenerate the baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rcast"
	"rcast/internal/sim"
)

const (
	baselineFile = "tools/perfsmoke/baseline.json"
	// Burstable CI containers show ±20% score wobble run to run, so the
	// tolerance sits above the noise; any regression worth catching (a
	// scheduler or allocation-path slip) moves the score by far more.
	maxRegress = 0.30 // fail when score drops >30% below baseline
	runs       = 3    // best-of runs per side
)

type baseline struct {
	Score   float64 `json:"score"`   // calibration_time / simulation_time
	Comment string  `json:"comment"` // provenance note
}

// calibrate times the fixed reference workload: the heap-oracle scheduler
// scheduling and draining a pseudo-random timer population. This code is
// frozen (it exists as a differential oracle), so the measurement only
// moves when the machine does.
func calibrate() time.Duration {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < runs; r++ {
		start := time.Now()
		s := sim.NewHeapScheduler()
		fn := func() {}
		x := uint64(12345)
		for i := 0; i < 300_000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			s.After(sim.Time(x%100_000), fn)
			if i%4 == 0 {
				s.Step()
			}
		}
		s.Run()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// simulate times the gated workload: the quick 3-node cell.
func simulate() (time.Duration, error) {
	cfg := rcast.PaperDefaults()
	cfg.Nodes = 3
	cfg.FieldW, cfg.FieldH = 200, 200
	cfg.Connections = 2
	cfg.PacketRate = 8
	cfg.Duration = rcast.Seconds(3600)
	cfg.Pause = rcast.Seconds(3600) // static cell
	cfg.Seed = 1

	best := time.Duration(1<<63 - 1)
	for r := 0; r < runs; r++ {
		start := time.Now()
		if _, err := rcast.RunReplications(cfg, 1); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

func main() {
	write := flag.Bool("write", false, "regenerate "+baselineFile+" from the current run instead of comparing")
	flag.Parse()

	cal := calibrate()
	simT, err := simulate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfsmoke:", err)
		os.Exit(1)
	}
	score := cal.Seconds() / simT.Seconds()
	fmt.Printf("perfsmoke: calibration %v, simulation %v, score %.3f\n",
		cal.Round(time.Microsecond), simT.Round(time.Microsecond), score)

	if *write {
		b := baseline{Score: score, Comment: "best-of-3 heap-oracle calibration vs quick 3-node cell; regenerate with go run ./tools/perfsmoke -write"}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfsmoke:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(baselineFile, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "perfsmoke:", err)
			os.Exit(1)
		}
		fmt.Printf("perfsmoke: wrote baseline score %.3f\n", score)
		return
	}

	data, err := os.ReadFile(baselineFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfsmoke: no baseline — run with -write first:", err)
		os.Exit(1)
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		fmt.Fprintln(os.Stderr, "perfsmoke: bad baseline:", err)
		os.Exit(1)
	}
	floor := b.Score * (1 - maxRegress)
	if score < floor {
		fmt.Fprintf(os.Stderr, "perfsmoke: FAIL — score %.3f is below floor %.3f (baseline %.3f, tolerance %d%%)\n",
			score, floor, b.Score, int(maxRegress*100))
		os.Exit(1)
	}
	fmt.Printf("perfsmoke: OK (baseline %.3f, floor %.3f)\n", b.Score, floor)
}
