// Command servesmoke is the end-to-end exercise of the rcast-serve
// daemon that scripts/ci.sh runs: it builds the real binary with the
// race detector, boots it on an ephemeral port, and drives the full job
// lifecycle over actual HTTP — submit, poll, fetch, verify the result is
// byte-identical to running the same config through the library path the
// CLI tools use, prove a resubmission is a cache hit that executes
// nothing, force a queue-full 429, check /healthz and /metrics, and
// finally SIGTERM the daemon and assert a graceful drain (503 intake,
// admitted work finishing, clean exit).
//
// Usage:
//
//	go run ./tools/servesmoke
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rcast"
	"rcast/internal/serve"
)

const quickJob = `{"scheme":"Rcast","nodes":12,"connections":3,"duration_sec":10,"static":true,"reps":1}`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "rcast-serve")
	build := exec.Command("go", "build", "-race", "-o", bin, "./cmd/rcast-serve")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build rcast-serve: %w", err)
	}

	if err := lifecyclePhase(bin); err != nil {
		return fmt.Errorf("lifecycle phase: %w", err)
	}
	if err := backpressureDrainPhase(bin); err != nil {
		return fmt.Errorf("backpressure/drain phase: %w", err)
	}
	return nil
}

// daemon wraps one running rcast-serve process.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startDaemon boots the binary on an ephemeral port and waits for a
// healthy /healthz. The listen address is parsed from the daemon's own
// startup log line.
func startDaemon(bin string, extraArgs ...string) (*daemon, error) {
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, "  [daemon]", line)
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j > 0 {
					select {
					case addrCh <- rest[:j]:
					default:
					}
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("daemon never logged its listen address")
	}
	d := &daemon{cmd: cmd, base: "http://" + addr}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d, nil
			}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			return nil, fmt.Errorf("daemon never became healthy")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill hard-stops the daemon (cleanup path only).
func (d *daemon) kill() { _ = d.cmd.Process.Kill(); _, _ = d.cmd.Process.Wait() }

func (d *daemon) submit(body string) (int, serve.Status, http.Header, error) {
	resp, err := http.Post(d.base+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, serve.Status{}, nil, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var st serve.Status
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &st); err != nil {
			return resp.StatusCode, st, resp.Header, fmt.Errorf("decode submit response %q: %w", raw, err)
		}
	}
	return resp.StatusCode, st, resp.Header, nil
}

func (d *daemon) status(id string) (serve.Status, error) {
	resp, err := http.Get(d.base + "/api/v1/jobs/" + id)
	if err != nil {
		return serve.Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.Status{}, fmt.Errorf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st serve.Status
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func (d *daemon) waitTerminal(id string, timeout time.Duration) (serve.Status, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := d.status(id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s still %s after %s", id, st.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (d *daemon) metricsPage() (string, error) {
	resp, err := http.Get(d.base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	page, err := io.ReadAll(resp.Body)
	return string(page), err
}

// lifecyclePhase: submit → poll → result → CLI-path parity → cache hit.
func lifecyclePhase(bin string) error {
	d, err := startDaemon(bin, "-workers", "2", "-queue", "8")
	if err != nil {
		return err
	}
	defer d.kill()

	code, st, _, err := d.submit(quickJob)
	if err != nil {
		return err
	}
	if code != http.StatusAccepted {
		return fmt.Errorf("submit: HTTP %d, want 202", code)
	}
	fin, err := d.waitTerminal(st.ID, 2*time.Minute)
	if err != nil {
		return err
	}
	if fin.State != serve.StateDone {
		return fmt.Errorf("job ended %s: %s", fin.State, fin.Error)
	}

	resp, err := http.Get(d.base + "/api/v1/jobs/" + st.ID + "/result")
	if err != nil {
		return err
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("result: HTTP %d (%s)", resp.StatusCode, got)
	}

	// Parity: the same request resolved and run through the library path
	// the CLI tools use must produce the same bytes.
	req, err := serve.ParseJobRequest(strings.NewReader(quickJob))
	if err != nil {
		return err
	}
	cfg, reps, err := req.Config()
	if err != nil {
		return err
	}
	agg, err := rcast.RunReplicationsContext(context.Background(), cfg, reps, 1)
	if err != nil {
		return err
	}
	want, err := serve.MarshalResult(st.Key, reps, agg)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("server result diverges from the CLI-path run (%d vs %d bytes)", len(got), len(want))
	}
	fmt.Println("servesmoke: parity ok, server result byte-identical to CLI path")

	// Resubmission must be a cache hit that executes nothing.
	page, err := d.metricsPage()
	if err != nil {
		return err
	}
	if !strings.Contains(page, `rcast_serve_runs_total{channel="disk",policy="rcast"} 1`) {
		return fmt.Errorf("metrics before resubmit missing runs_total 1:\n%s", page)
	}
	code2, st2, _, err := d.submit(quickJob)
	if err != nil {
		return err
	}
	if code2 != http.StatusOK || !st2.CacheHit || st2.State != serve.StateDone {
		return fmt.Errorf("resubmit: HTTP %d status %+v, want 200 cache hit", code2, st2)
	}
	page, err = d.metricsPage()
	if err != nil {
		return err
	}
	for _, wantLine := range []string{
		`rcast_serve_runs_total{channel="disk",policy="rcast"} 1`, // unchanged: the hit executed nothing
		"rcast_serve_cache_hits_total 1",
		`rcast_serve_jobs_total{state="done"} 2`,
	} {
		if !strings.Contains(page, wantLine) {
			return fmt.Errorf("metrics after cache hit missing %q:\n%s", wantLine, page)
		}
	}
	fmt.Println("servesmoke: cache hit ok, no re-execution")
	d.kill()
	return nil
}

// backpressureDrainPhase: fill the 1-slot queue for a 429, then SIGTERM
// and verify intake closes while admitted jobs finish.
func backpressureDrainPhase(bin string) error {
	d, err := startDaemon(bin, "-workers", "1", "-queue", "1", "-drain-timeout", "2m")
	if err != nil {
		return err
	}
	defer d.kill()

	longJob := `{"scheme":"Rcast","nodes":30,"connections":5,"duration_sec":3600,"reps":1}`
	code, stA, _, err := d.submit(longJob)
	if err != nil {
		return err
	}
	if code != http.StatusAccepted {
		return fmt.Errorf("submit long A: HTTP %d", code)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		st, err := d.status(stA.ID)
		if err != nil {
			return err
		}
		if st.State == serve.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("long job never started")
		}
		time.Sleep(10 * time.Millisecond)
	}
	code, stB, _, err := d.submit(`{"scheme":"Rcast","nodes":30,"connections":5,"duration_sec":3600,"reps":1,"seed":91}`)
	if err != nil {
		return err
	}
	if code != http.StatusAccepted {
		return fmt.Errorf("submit queued B: HTTP %d", code)
	}
	code, _, hdr, err := d.submit(`{"scheme":"Rcast","nodes":30,"connections":5,"duration_sec":3600,"reps":1,"seed":92}`)
	if err != nil {
		return err
	}
	if code != http.StatusTooManyRequests {
		return fmt.Errorf("submit C with full queue: HTTP %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		return fmt.Errorf("429 without Retry-After")
	}
	fmt.Println("servesmoke: backpressure ok, full queue answered 429 + Retry-After")

	// SIGTERM: intake must close while the admitted jobs keep running.
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	deadline = time.Now().Add(time.Minute)
	for {
		resp, err := http.Get(d.base + "/healthz")
		if err != nil {
			return fmt.Errorf("healthz during drain: %w", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("healthz never reported draining")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if drainCode, _, _, drainErr := d.submit(quickJob); drainErr != nil || drainCode != http.StatusServiceUnavailable {
		return fmt.Errorf("submit while draining: HTTP %d err %v, want 503", drainCode, drainErr)
	}
	fmt.Println("servesmoke: drain ok, intake rejected with 503")

	// Cancel the admitted jobs (allowed during drain) so the daemon can
	// finish promptly, and require a clean exit.
	for _, id := range []string{stA.ID, stB.ID} {
		resp, err := http.Post(d.base+"/api/v1/jobs/"+id+"/cancel", "", nil)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("cancel %s during drain: HTTP %d", id, resp.StatusCode)
		}
	}
	exited := make(chan error, 1)
	go func() { exited <- d.cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("daemon exited uncleanly after drain: %w", err)
		}
	case <-time.After(2 * time.Minute):
		return fmt.Errorf("daemon did not exit after drain")
	}
	fmt.Println("servesmoke: graceful exit ok, canceled jobs terminal and process exited 0")
	return nil
}
