// Command shadowcheck reports short variable declarations that shadow a
// variable of the same name from an enclosing scope in the same function —
// the bug class behind reading a stale outer value after an inner
// `x, ok := ...` silently rebound x. It is a standard-library-only
// substitute for vet's optional shadow analyzer (this repo builds with no
// module downloads), so it works from syntax alone:
//
//   - every function body is walked with an explicit scope stack
//     (parameters and named results seed the outermost scope);
//   - each := (assignment or range) that rebinds a name already declared in
//     an enclosing scope of the same function is reported;
//   - the conventional throwaways err and ok are exempt, as is a name whose
//     enclosing binding is itself never referenced again after the
//     shadowing point (rebinding it cannot change behaviour).
//
// Usage: go run ./tools/shadowcheck [dir ...]   (default: .)
// Walks each directory recursively over non-test and test .go files alike
// and exits 1 when any shadowing is found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var files []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "shadowcheck: %v\n", err)
			os.Exit(2)
		}
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	found := 0
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shadowcheck: %v\n", err)
			os.Exit(2)
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			found += checkFunc(fset, fn)
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "shadowcheck: %d shadowed declaration(s)\n", found)
		os.Exit(1)
	}
}

// exempt names are rebound so pervasively and idiomatically in Go that
// reporting them would bury real findings.
var exempt = map[string]bool{"err": true, "ok": true, "_": true}

// scope is one lexical level: the names it declares, and where.
type scope map[string]token.Pos

// checker walks one function with an explicit scope stack.
type checker struct {
	fset   *token.FileSet
	fn     *ast.FuncDecl
	stack  []scope
	report int
}

func checkFunc(fset *token.FileSet, fn *ast.FuncDecl) int {
	c := &checker{fset: fset, fn: fn}
	c.push()
	if fn.Recv != nil {
		c.declareFields(fn.Recv)
	}
	if fn.Type.Params != nil {
		c.declareFields(fn.Type.Params)
	}
	if fn.Type.Results != nil {
		c.declareFields(fn.Type.Results)
	}
	c.block(fn.Body)
	c.pop()
	return c.report
}

func (c *checker) push() { c.stack = append(c.stack, scope{}) }
func (c *checker) pop()  { c.stack = c.stack[:len(c.stack)-1] }

func (c *checker) declareFields(fl *ast.FieldList) {
	for _, f := range fl.List {
		for _, n := range f.Names {
			c.declare(n)
		}
	}
}

func (c *checker) declare(id *ast.Ident) {
	if id.Name == "_" {
		return
	}
	c.stack[len(c.stack)-1][id.Name] = id.Pos()
}

// checkDecl reports id if an enclosing scope already binds its name and
// that outer binding is still referenced after the shadowing point.
func (c *checker) checkDecl(id *ast.Ident) {
	if exempt[id.Name] {
		c.declare(id)
		return
	}
	for i := len(c.stack) - 2; i >= 0; i-- {
		if outer, shadowed := c.stack[i][id.Name]; shadowed {
			if c.usedAfter(id.Name, id.End()) {
				pos := c.fset.Position(id.Pos())
				fmt.Printf("%s: %q shadows declaration at %s\n",
					pos, id.Name, c.fset.Position(outer))
				c.report++
			}
			break
		}
	}
	c.declare(id)
}

// usedAfter reports whether name appears as an identifier anywhere in the
// function after pos. Syntactic and over-approximate on purpose: a later
// use of the *inner* binding also returns true, which only ever keeps a
// report, never suppresses one.
func (c *checker) usedAfter(name string, pos token.Pos) bool {
	used := false
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name && id.Pos() > pos {
			used = true
		}
		return true
	})
	return used
}

// stmt walks one statement, managing scopes for every construct that
// introduces a lexical level.
func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.push()
		c.block(s)
		c.pop()
	case *ast.AssignStmt:
		c.exprs(s.Rhs)
		if s.Tok == token.DEFINE {
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				// `x := x` is the deliberate loop-capture idiom, not a bug.
				if len(s.Lhs) == len(s.Rhs) {
					if rid, ok := s.Rhs[i].(*ast.Ident); ok && rid.Name == id.Name {
						c.declare(id)
						continue
					}
				}
				c.checkDecl(id)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.exprs(vs.Values)
					for _, n := range vs.Names {
						c.checkDecl(n)
					}
				}
			}
		}
	case *ast.IfStmt:
		c.push()
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.expr(s.Cond)
		c.push()
		c.block(s.Body)
		c.pop()
		if s.Else != nil {
			c.stmt(s.Else)
		}
		c.pop()
	case *ast.ForStmt:
		c.push()
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		if s.Post != nil {
			c.stmt(s.Post)
		}
		c.push()
		c.block(s.Body)
		c.pop()
		c.pop()
	case *ast.RangeStmt:
		c.push()
		c.expr(s.X)
		if s.Tok == token.DEFINE {
			if id, ok := s.Key.(*ast.Ident); ok {
				c.checkDecl(id)
			}
			if id, ok := s.Value.(*ast.Ident); ok {
				c.checkDecl(id)
			}
		}
		c.push()
		c.block(s.Body)
		c.pop()
		c.pop()
	case *ast.SwitchStmt:
		c.push()
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Tag != nil {
			c.expr(s.Tag)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.push()
				c.stmts(cc.Body)
				c.pop()
			}
		}
		c.pop()
	case *ast.TypeSwitchStmt:
		c.push()
		if s.Init != nil {
			c.stmt(s.Init)
		}
		// `switch v := x.(type)` declares v once per clause; treat the
		// clause scope as declaring it so later clauses don't self-report.
		var tsName *ast.Ident
		if as, ok := s.Assign.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				tsName = id
			}
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.push()
				if tsName != nil {
					c.declare(tsName)
				}
				c.stmts(cc.Body)
				c.pop()
			}
		}
		c.pop()
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				c.push()
				if cc.Comm != nil {
					c.stmt(cc.Comm)
				}
				c.stmts(cc.Body)
				c.pop()
			}
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	case *ast.GoStmt:
		c.expr(s.Call)
	case *ast.DeferStmt:
		c.expr(s.Call)
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.ReturnStmt:
		c.exprs(s.Results)
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
	case *ast.IncDecStmt:
		c.expr(s.X)
	}
}

// expr descends into expressions only to find function literals, whose
// bodies get their own parameter scope.
func (c *checker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		c.push()
		if fl.Type.Params != nil {
			c.declareFields(fl.Type.Params)
		}
		if fl.Type.Results != nil {
			c.declareFields(fl.Type.Results)
		}
		c.block(fl.Body)
		c.pop()
		return false
	})
}

func (c *checker) exprs(es []ast.Expr) {
	for _, e := range es {
		c.expr(e)
	}
}

func (c *checker) block(b *ast.BlockStmt) { c.stmts(b.List) }

func (c *checker) stmts(ss []ast.Stmt) {
	for _, s := range ss {
		c.stmt(s)
	}
}
