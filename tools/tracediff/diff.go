package main

import (
	"fmt"
	"io"

	"rcast/internal/trace"
)

// diffEvents locates the first difference between two event streams; ok
// is false when the streams are identical. The comparison itself lives in
// trace.Diff so tracegate and the replay engine report identically.
func diffEvents(a, b []trace.Event) (trace.Divergence, bool) {
	return trace.Diff(a, b)
}

// report prints the divergence with up to context common events leading
// into it, so the reader sees what both runs agreed on last.
func report(w io.Writer, a, b []trace.Event, d trace.Divergence, context int) {
	lo := d.Index - context
	if lo < 0 {
		lo = 0
	}
	if lo < d.Index {
		fmt.Fprintf(w, "common prefix (last %d of %d events):\n", d.Index-lo, d.Index)
		for i := lo; i < d.Index; i++ {
			fmt.Fprintf(w, "    %s\n", a[i])
		}
	}
	fmt.Fprintf(w, "first divergence at event %d:\n", d.Index)
	fmt.Fprintf(w, "  A: %s\n", side(d.A))
	fmt.Fprintf(w, "  B: %s\n", side(d.B))
	fmt.Fprintf(w, "totals: A=%d events, B=%d events\n", len(a), len(b))
}

func side(e *trace.Event) string {
	if e == nil {
		return "<end of trace>"
	}
	return e.String()
}
