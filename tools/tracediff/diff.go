package main

import (
	"fmt"
	"io"

	"rcast/internal/trace"
)

// divergence locates the first difference between two event streams.
type divergence struct {
	index int          // 0-based position of the first differing event
	a, b  *trace.Event // nil when that side's stream ended first
}

// diffEvents compares two traces event-for-event and returns the first
// divergence; ok is false when the streams are identical. Events are
// compared in full — sequence number, time, node, kind, packet UID and
// detail — so any behavioural difference between two runs surfaces at
// the earliest event it touches.
func diffEvents(a, b []trace.Event) (divergence, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return divergence{index: i, a: &a[i], b: &b[i]}, true
		}
	}
	if len(a) == len(b) {
		return divergence{}, false
	}
	d := divergence{index: n}
	if len(a) > n {
		d.a = &a[n]
	}
	if len(b) > n {
		d.b = &b[n]
	}
	return d, true
}

// report prints the divergence with up to context common events leading
// into it, so the reader sees what both runs agreed on last.
func report(w io.Writer, a, b []trace.Event, d divergence, context int) {
	lo := d.index - context
	if lo < 0 {
		lo = 0
	}
	if lo < d.index {
		fmt.Fprintf(w, "common prefix (last %d of %d events):\n", d.index-lo, d.index)
		for i := lo; i < d.index; i++ {
			fmt.Fprintf(w, "    %s\n", a[i])
		}
	}
	fmt.Fprintf(w, "first divergence at event %d:\n", d.index)
	fmt.Fprintf(w, "  A: %s\n", side(d.a))
	fmt.Fprintf(w, "  B: %s\n", side(d.b))
	fmt.Fprintf(w, "totals: A=%d events, B=%d events\n", len(a), len(b))
}

func side(e *trace.Event) string {
	if e == nil {
		return "<end of trace>"
	}
	return e.String()
}
