package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rcast/internal/phy"
	"rcast/internal/sim"
	"rcast/internal/trace"
)

func sampleEvents(n int) []trace.Event {
	evs := make([]trace.Event, n)
	for i := range evs {
		evs[i] = trace.Event{
			Seq:    uint64(i + 1),
			At:     sim.Time(1000 * (i + 1)),
			Node:   phy.NodeID(i % 5),
			Kind:   trace.KindForward,
			Pkt:    "0:1:2",
			Detail: "hop",
		}
	}
	return evs
}

func TestDiffEventsIdentical(t *testing.T) {
	a := sampleEvents(20)
	b := sampleEvents(20)
	if _, diverged := diffEvents(a, b); diverged {
		t.Fatal("identical streams reported divergent")
	}
	if _, diverged := diffEvents(nil, nil); diverged {
		t.Fatal("two empty streams reported divergent")
	}
}

func TestDiffEventsPlantedDivergence(t *testing.T) {
	a := sampleEvents(20)
	b := sampleEvents(20)
	b[13].Detail = "planted"
	d, diverged := diffEvents(a, b)
	if !diverged {
		t.Fatal("planted divergence not found")
	}
	if d.Index != 13 {
		t.Fatalf("divergence at index %d, want 13", d.Index)
	}
	if d.A == nil || d.B == nil || d.A.Detail != "hop" || d.B.Detail != "planted" {
		t.Fatalf("divergence carries wrong events: %+v / %+v", d.A, d.B)
	}
}

func TestDiffEventsPrefix(t *testing.T) {
	a := sampleEvents(20)
	b := sampleEvents(15) // b is a strict prefix of a
	d, diverged := diffEvents(a, b)
	if !diverged {
		t.Fatal("length mismatch not reported")
	}
	if d.Index != 15 {
		t.Fatalf("divergence at index %d, want 15 (end of shorter stream)", d.Index)
	}
	if d.A == nil || d.B != nil {
		t.Fatalf("prefix divergence should have a set and b nil: %+v / %+v", d.A, d.B)
	}
}

// writeTrace writes events as NDJSON the way rcast-sim -trace would.
func writeTrace(t *testing.T, path string, evs []trace.Event) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := trace.NewWriter(f)
	for _, e := range evs {
		w.Emit(e)
	}
}

// TestRunFileMode drives the CLI entry point end to end on two trace
// files with a planted divergence, then on two identical ones.
func TestRunFileMode(t *testing.T) {
	dir := t.TempDir()
	pa := filepath.Join(dir, "a.jsonl")
	pb := filepath.Join(dir, "b.jsonl")

	a := sampleEvents(30)
	b := sampleEvents(30)
	b[7].Node = 99
	writeTrace(t, pa, a)
	writeTrace(t, pb, b)

	var out bytes.Buffer
	diverged, err := run([]string{"-a", pa, "-b", pb}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !diverged {
		t.Fatal("planted divergence not reported")
	}
	if !strings.Contains(out.String(), "first divergence at event 7") {
		t.Fatalf("report does not locate the divergence:\n%s", out.String())
	}

	out.Reset()
	writeTrace(t, pb, a)
	diverged, err = run([]string{"-a", pa, "-b", pb}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if diverged {
		t.Fatal("identical files reported divergent")
	}
	if !strings.Contains(out.String(), "traces identical: 30 events") {
		t.Fatalf("unexpected identical-report:\n%s", out.String())
	}
}

func TestRunFileModeErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"-a", "only-one-side.jsonl"}, &out); err == nil {
		t.Fatal("lone -a accepted")
	}
	if _, err := run([]string{"-a", "nope.jsonl", "-b", "nope.jsonl"}, &out); err == nil {
		t.Fatal("missing files accepted")
	}
}

// TestRunRunMode exercises run mode end to end on tiny scenarios: every
// -*-b override branch applied at once (must diverge), and an audit-only
// override (must be identical — the audit is observation-only).
func TestRunRunMode(t *testing.T) {
	base := []string{"-nodes", "8", "-field-w", "400", "-duration", "10s", "-static", "-connections", "2"}

	var out strings.Builder
	diverged, err := run(append(base, "-scheme-b", "PSM", "-rate-b", "0.8", "-seed-b", "2", "-gossip-b", "3"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !diverged || !strings.Contains(out.String(), "first divergence at event") {
		t.Fatalf("overridden side B did not diverge: %s", out.String())
	}

	out.Reset()
	diverged, err = run(append(base, "-audit-b"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if diverged {
		t.Fatalf("audit-on side B diverged: %s", out.String())
	}
	if !strings.Contains(out.String(), "traces identical") {
		t.Fatalf("output = %q", out.String())
	}
}
