package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile drops raw bytes for file-mode edge cases (empty traces,
// hand-built NDJSON).
func writeFile(t *testing.T, dir, name string, data []byte) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestExitCodeMissingInput pins exit 2: a nonexistent input file is an
// execution error, not a divergence.
func TestExitCodeMissingInput(t *testing.T) {
	dir := t.TempDir()
	pa := writeFile(t, dir, "a.jsonl", nil)
	var out bytes.Buffer
	diverged, err := run([]string{"-a", pa, "-b", filepath.Join(dir, "missing.jsonl")}, &out)
	if err == nil {
		t.Fatal("missing -b file accepted")
	}
	if got := exitCode(diverged, err); got != 2 {
		t.Fatalf("exit code %d, want 2", got)
	}
}

// TestExitCodeEmptyTraces pins exit 0 on two empty traces: zero events on
// both sides is identity, not an error.
func TestExitCodeEmptyTraces(t *testing.T) {
	dir := t.TempDir()
	pa := writeFile(t, dir, "a.jsonl", nil)
	pb := writeFile(t, dir, "b.jsonl", nil)
	var out bytes.Buffer
	diverged, err := run([]string{"-a", pa, "-b", pb}, &out)
	if err != nil {
		t.Fatalf("empty traces errored: %v", err)
	}
	if got := exitCode(diverged, err); got != 0 {
		t.Fatalf("exit code %d, want 0", got)
	}
	if !strings.Contains(out.String(), "traces identical: 0 events") {
		t.Fatalf("output = %q", out.String())
	}
}

// TestExitCodeEmptyVersusNonEmpty pins exit 1 with the divergence at
// event 0: one side ends before the other begins.
func TestExitCodeEmptyVersusNonEmpty(t *testing.T) {
	dir := t.TempDir()
	pa := writeFile(t, dir, "a.jsonl", nil)
	pb := filepath.Join(dir, "b.jsonl")
	writeTrace(t, pb, sampleEvents(3))
	var out bytes.Buffer
	diverged, err := run([]string{"-a", pa, "-b", pb}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := exitCode(diverged, err); got != 1 {
		t.Fatalf("exit code %d, want 1", got)
	}
	if !strings.Contains(out.String(), "first divergence at event 0") ||
		!strings.Contains(out.String(), "<end of trace>") {
		t.Fatalf("report does not pin the empty side at event 0:\n%s", out.String())
	}
}

// TestExitCodeDifferentLengths pins exit 1 when side B is a strict prefix
// of side A — the identical prefix then EOF case. The divergence index is
// the length of the shorter stream and the report shows both totals.
func TestExitCodeDifferentLengths(t *testing.T) {
	dir := t.TempDir()
	pa := filepath.Join(dir, "a.jsonl")
	pb := filepath.Join(dir, "b.jsonl")
	writeTrace(t, pa, sampleEvents(20))
	writeTrace(t, pb, sampleEvents(14))
	var out bytes.Buffer
	diverged, err := run([]string{"-a", pa, "-b", pb}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := exitCode(diverged, err); got != 1 {
		t.Fatalf("exit code %d, want 1", got)
	}
	s := out.String()
	if !strings.Contains(s, "first divergence at event 14") {
		t.Fatalf("divergence not at the shorter stream's end:\n%s", s)
	}
	if !strings.Contains(s, "<end of trace>") {
		t.Fatalf("truncated side not rendered as end-of-trace:\n%s", s)
	}
	if !strings.Contains(s, "totals: A=20 events, B=14 events") {
		t.Fatalf("totals line missing or wrong:\n%s", s)
	}
}

// TestExitCodeIdenticalPrefixThenEOFIsError: a file that ends mid-line is
// a truncated recording — file mode refuses it (exit 2) rather than
// diffing a silently shortened stream.
func TestExitCodeIdenticalPrefixThenEOF(t *testing.T) {
	dir := t.TempDir()
	pa := filepath.Join(dir, "a.jsonl")
	writeTrace(t, pa, sampleEvents(6))
	full, err := os.ReadFile(pa)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the final line mid-JSON: identical prefix, then EOF.
	cut := bytes.LastIndexByte(bytes.TrimRight(full, "\n"), '\n')
	pb := writeFile(t, dir, "b.jsonl", full[:cut+10])
	var out bytes.Buffer
	diverged, err := run([]string{"-a", pa, "-b", pb}, &out)
	if err == nil {
		t.Fatalf("truncated side B accepted (diverged=%v):\n%s", diverged, out.String())
	}
	if got := exitCode(diverged, err); got != 2 {
		t.Fatalf("exit code %d, want 2", got)
	}
}

// TestExitCodeIdentical pins exit 0 on byte-identical non-empty traces.
func TestExitCodeIdentical(t *testing.T) {
	dir := t.TempDir()
	pa := filepath.Join(dir, "a.jsonl")
	pb := filepath.Join(dir, "b.jsonl")
	writeTrace(t, pa, sampleEvents(9))
	writeTrace(t, pb, sampleEvents(9))
	var out bytes.Buffer
	diverged, err := run([]string{"-a", pa, "-b", pb}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := exitCode(diverged, err); got != 0 {
		t.Fatalf("exit code %d, want 0", got)
	}
}
