// Command tracediff locates the first behavioural divergence between two
// simulation runs by diffing their packet-lifecycle traces.
//
// It has two modes. In run mode it builds two configs — side A from the
// base flags, side B from the same base with any `-*-b` override applied —
// runs both with an in-memory trace recorder, and reports the first event
// where the traces differ:
//
//	tracediff -seed 1 -seed-b 2          # two seeds of one config
//	tracediff -scheme PSM -scheme-b Rcast
//	tracediff -audit-b                   # audit-on vs audit-off (should be identical)
//
// In file mode it diffs two NDJSON traces captured earlier with
// `rcast-sim -trace` or downloaded from `rcast-serve`:
//
//	tracediff -a run1.jsonl -b run2.jsonl
//
// Exit status: 0 when the traces are identical, 1 on divergence, 2 on
// usage or execution errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"rcast/internal/scenario"
	"rcast/internal/sim"
	"rcast/internal/trace"
)

func main() {
	diverged, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracediff:", err)
	}
	os.Exit(exitCode(diverged, err))
}

// exitCode maps a run outcome to the documented process exit status:
// 0 identical, 1 diverged, 2 usage or execution error.
func exitCode(diverged bool, err error) int {
	switch {
	case err != nil:
		return 2
	case diverged:
		return 1
	}
	return 0
}

func run(args []string, out io.Writer) (bool, error) {
	fs := flag.NewFlagSet("tracediff", flag.ContinueOnError)
	var (
		aFile = fs.String("a", "", "side A: NDJSON trace file (file mode; requires -b)")
		bFile = fs.String("b", "", "side B: NDJSON trace file (file mode; requires -a)")

		schemeName = fs.String("scheme", "Rcast", "scheme: 802.11, PSM, PSM-no-overhear, ODPM, Rcast")
		nodes      = fs.Int("nodes", 40, "number of nodes")
		fieldW     = fs.Float64("field-w", 900, "field width (m)")
		fieldH     = fs.Float64("field-h", 300, "field height (m)")
		conns      = fs.Int("connections", 8, "CBR connections")
		rate       = fs.Float64("rate", 0.4, "packets per second per connection")
		duration   = fs.Duration("duration", 60*time.Second, "simulated time")
		pause      = fs.Duration("pause", 30*time.Second, "random waypoint pause time")
		static     = fs.Bool("static", false, "static scenario (pause = duration)")
		seed       = fs.Int64("seed", 1, "random seed")
		gossip     = fs.Float64("gossip", 0, "broadcast-Rcast fanout (0 disables)")
		audit      = fs.Bool("audit", false, "run under the cross-layer invariant audit")

		schemeB = fs.String("scheme-b", "", "side B scheme override")
		rateB   = fs.Float64("rate-b", 0, "side B packet rate override")
		seedB   = fs.Int64("seed-b", 0, "side B seed override")
		gossipB = fs.Float64("gossip-b", 0, "side B gossip fanout override")
		auditB  = fs.Bool("audit-b", false, "side B audit override")

		context = fs.Int("context", 3, "common events to print before the divergence")
	)
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if (*aFile == "") != (*bFile == "") {
		return false, fmt.Errorf("file mode needs both -a and -b")
	}

	var evA, evB []trace.Event
	if *aFile != "" {
		var err error
		if evA, err = readFile(*aFile); err != nil {
			return false, err
		}
		if evB, err = readFile(*bFile); err != nil {
			return false, err
		}
	} else {
		cfgA := scenario.PaperDefaults()
		scheme, err := scenario.ParseScheme(*schemeName)
		if err != nil {
			return false, err
		}
		cfgA.Scheme = scheme
		cfgA.Nodes = *nodes
		cfgA.FieldW, cfgA.FieldH = *fieldW, *fieldH
		cfgA.Connections = *conns
		cfgA.PacketRate = *rate
		cfgA.Duration = sim.FromSeconds(duration.Seconds())
		cfgA.Pause = sim.FromSeconds(pause.Seconds())
		if *static {
			cfgA.Pause = cfgA.Duration
		}
		cfgA.Seed = *seed
		cfgA.GossipFanout = *gossip
		cfgA.Audit = *audit

		// Side B starts as a copy of A; only explicitly passed -*-b flags
		// override it, so `tracediff -seed-b 2` compares seeds and nothing
		// else.
		cfgB := cfgA
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if set["scheme-b"] {
			s, err := scenario.ParseScheme(*schemeB)
			if err != nil {
				return false, err
			}
			cfgB.Scheme = s
		}
		if set["rate-b"] {
			cfgB.PacketRate = *rateB
		}
		if set["seed-b"] {
			cfgB.Seed = *seedB
		}
		if set["gossip-b"] {
			cfgB.GossipFanout = *gossipB
		}
		if set["audit-b"] {
			cfgB.Audit = *auditB
		}

		if evA, err = record(cfgA); err != nil {
			return false, fmt.Errorf("side A: %w", err)
		}
		if evB, err = record(cfgB); err != nil {
			return false, fmt.Errorf("side B: %w", err)
		}
	}

	d, diverged := diffEvents(evA, evB)
	if !diverged {
		fmt.Fprintf(out, "traces identical: %d events\n", len(evA))
		return false, nil
	}
	report(out, evA, evB, d, *context)
	return true, nil
}

// record runs one simulation with an in-memory trace recorder attached
// and returns its event stream.
func record(cfg scenario.Config) ([]trace.Event, error) {
	rec := trace.NewRecorder()
	cfg.Trace = rec
	if _, err := scenario.Run(cfg); err != nil {
		return nil, err
	}
	return rec.Events(), nil
}

func readFile(path string) ([]trace.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	evs, err := trace.ReadEvents(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return evs, nil
}
