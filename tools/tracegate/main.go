// Command tracegate is the golden-trace regression gate: it re-runs every
// cell of the committed corpus (testdata/corpus) against the current tree
// and trace-diffs the fresh run against the cell's golden artifacts. Any
// behavioral drift — a changed lottery verdict, a reordered event, a
// shifted timestamp — surfaces as the first divergent event, pinned to a
// named cell, instead of as a silently different headline metric.
//
// Each corpus cell is a directory containing:
//
//	cell.json    the run's configuration, in the rcast-serve JobRequest
//	             format (strict JSON; reps must resolve to 1)
//	trace.ndjson the golden packet-lifecycle trace
//	result.json  the golden scenario.Result document
//	serve.check  optional marker: additionally submit the cell to an
//	             in-process rcast-serve instance and require the trace
//	             artifact it stores to match the golden bytes
//
// For every cell the gate checks three things:
//
//  1. Fresh run: the cell's config re-executed at HEAD emits a trace
//     byte-identical to trace.ndjson and a result byte-identical to
//     result.json.
//  2. Replay: the golden trace replayed through internal/replay
//     (decisions injected, RNG bypassed) reproduces itself byte-for-byte
//     and yields the golden result.
//  3. Serve (marked cells): the traced-job artifact served by rcast-serve
//     equals the golden trace.
//
// With -update the gate instead regenerates trace.ndjson and result.json
// from the fresh run (and still requires the replay check to pass before
// writing). Commit the regenerated goldens together with the change that
// moved them, and say why in the commit message — a golden that moves
// without an explanation is a regression until proven otherwise.
//
// Exit status: 0 when every cell passes, 1 on any divergence, 2 on usage
// or execution errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"rcast/internal/replay"
	"rcast/internal/scenario"
	"rcast/internal/serve"
	"rcast/internal/trace"
)

func main() {
	diverged, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegate:", err)
		os.Exit(2)
	}
	if diverged {
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (bool, error) {
	fs := flag.NewFlagSet("tracegate", flag.ContinueOnError)
	var (
		corpus = fs.String("corpus", "testdata/corpus", "corpus directory (one sub-directory per cell)")
		cell   = fs.String("cell", "", "gate only the named cell (default: all)")
		update = fs.Bool("update", false, "regenerate golden trace.ndjson and result.json from the fresh run")
	)
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	cells, err := listCells(*corpus, *cell)
	if err != nil {
		return false, err
	}
	diverged := false
	for _, name := range cells {
		dir := filepath.Join(*corpus, name)
		var failures []string
		if *update {
			failures, err = updateCell(dir)
		} else {
			failures, err = gateCell(dir)
		}
		if err != nil {
			return false, fmt.Errorf("cell %s: %w", name, err)
		}
		if len(failures) == 0 {
			verb := "ok"
			if *update {
				verb = "updated"
			}
			fmt.Fprintf(out, "tracegate: %-18s %s\n", name, verb)
			continue
		}
		diverged = true
		for _, f := range failures {
			fmt.Fprintf(out, "tracegate: %-18s FAIL: %s\n", name, f)
		}
	}
	return diverged, nil
}

// listCells enumerates corpus cell directories, sorted for stable output.
func listCells(corpus, only string) ([]string, error) {
	entries, err := os.ReadDir(corpus)
	if err != nil {
		return nil, fmt.Errorf("read corpus: %w", err)
	}
	var cells []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if only != "" && e.Name() != only {
			continue
		}
		cells = append(cells, e.Name())
	}
	if len(cells) == 0 {
		if only != "" {
			return nil, fmt.Errorf("no cell %q in %s", only, corpus)
		}
		return nil, fmt.Errorf("no cells in %s", corpus)
	}
	sort.Strings(cells)
	return cells, nil
}

// loadCell parses a cell's configuration.
func loadCell(dir string) (serve.JobRequest, scenario.Config, error) {
	f, err := os.Open(filepath.Join(dir, "cell.json"))
	if err != nil {
		return serve.JobRequest{}, scenario.Config{}, err
	}
	defer f.Close()
	req, err := serve.ParseJobRequest(f)
	if err != nil {
		return req, scenario.Config{}, err
	}
	cfg, reps, err := req.Config()
	if err != nil {
		return req, cfg, err
	}
	if reps != 1 {
		return req, cfg, fmt.Errorf("corpus cells must resolve to reps=1, got %d", reps)
	}
	return req, cfg, nil
}

// freshRun executes the cell's config at HEAD, returning the trace bytes
// and the marshalled result document.
func freshRun(cfg scenario.Config) ([]byte, []byte, error) {
	var buf bytes.Buffer
	cfg.Trace = trace.NewWriter(&buf)
	res, err := scenario.Run(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("run: %w", err)
	}
	body, err := marshalResult(res)
	if err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), body, nil
}

// marshalResult renders the golden result document deterministically.
func marshalResult(res *scenario.Result) ([]byte, error) {
	body, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("marshal result: %w", err)
	}
	return append(body, '\n'), nil
}

// serializeEvents renders events exactly as the live Writer would, so a
// replayed stream can be byte-compared against a golden file.
func serializeEvents(events []trace.Event) []byte {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for _, e := range events {
		w.Emit(e)
	}
	return buf.Bytes()
}

// gateCell runs every check against a cell's committed goldens, returning
// one message per failed check (empty = cell passes).
func gateCell(dir string) ([]string, error) {
	req, cfg, err := loadCell(dir)
	if err != nil {
		return nil, err
	}
	goldenTrace, err := os.ReadFile(filepath.Join(dir, "trace.ndjson"))
	if err != nil {
		return nil, err
	}
	goldenResult, err := os.ReadFile(filepath.Join(dir, "result.json"))
	if err != nil {
		return nil, err
	}

	var failures []string

	// Check 1: fresh run at HEAD matches the goldens.
	gotTrace, gotResult, err := freshRun(cfg)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(gotTrace, goldenTrace) {
		failures = append(failures, describeTraceDiff(goldenTrace, gotTrace))
	}
	if !bytes.Equal(gotResult, goldenResult) {
		failures = append(failures, "fresh run result differs from golden result.json (run with -update after verifying the change is intended)")
	}

	// Check 2: the golden trace replays byte-identically and reproduces
	// the golden result.
	events, err := trace.ReadEvents(bytes.NewReader(goldenTrace))
	if err != nil {
		return nil, fmt.Errorf("parse golden trace: %w", err)
	}
	res, replayed, err := replay.Run(cfg, events)
	if err != nil {
		failures = append(failures, fmt.Sprintf("replay of golden trace: %v", err))
	} else {
		if got := serializeEvents(replayed); !bytes.Equal(got, goldenTrace) {
			failures = append(failures, describeTraceDiff(goldenTrace, got))
		}
		body, err := marshalResult(res)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(body, goldenResult) {
			failures = append(failures, "replayed result differs from golden result.json")
		}
	}

	// Check 3 (marked cells): the rcast-serve trace artifact matches.
	if _, err := os.Stat(filepath.Join(dir, "serve.check")); err == nil {
		artifact, err := serveTrace(req)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(artifact, goldenTrace) {
			failures = append(failures, "serve trace artifact differs from golden trace: "+describeTraceDiff(goldenTrace, artifact))
		}
	}
	return failures, nil
}

// updateCell regenerates a cell's goldens from a fresh run, refusing to
// write artifacts that do not survive their own replay check.
func updateCell(dir string) ([]string, error) {
	_, cfg, err := loadCell(dir)
	if err != nil {
		return nil, err
	}
	gotTrace, gotResult, err := freshRun(cfg)
	if err != nil {
		return nil, err
	}
	events, err := trace.ReadEvents(bytes.NewReader(gotTrace))
	if err != nil {
		return nil, fmt.Errorf("parse fresh trace: %w", err)
	}
	if _, _, err := replay.Run(cfg, events); err != nil {
		return []string{fmt.Sprintf("fresh trace does not replay; refusing to write goldens: %v", err)}, nil
	}
	if err := os.WriteFile(filepath.Join(dir, "trace.ndjson"), gotTrace, 0o644); err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "result.json"), gotResult, 0o644); err != nil {
		return nil, err
	}
	return nil, nil
}

// describeTraceDiff names the first divergent event between a golden
// trace and a fresh one, falling back to a byte-level note when either
// side fails to parse.
func describeTraceDiff(golden, got []byte) string {
	evA, errA := trace.ReadEvents(bytes.NewReader(golden))
	evB, errB := trace.ReadEvents(bytes.NewReader(got))
	if errA != nil || errB != nil {
		return fmt.Sprintf("trace bytes differ (golden parse: %v, fresh parse: %v)", errA, errB)
	}
	d, diverged := trace.Diff(evA, evB)
	if !diverged {
		// Same events, different bytes: an encoding change, not a
		// behavioral one — still a golden break.
		return "trace bytes differ but events are identical (NDJSON encoding changed?)"
	}
	return fmt.Sprintf("first divergence at event %d:\n  golden: %s\n  head:   %s",
		d.Index, sideString(d.A), sideString(d.B))
}

func sideString(e *trace.Event) string {
	if e == nil {
		return "<end of trace>"
	}
	return e.String()
}

// serveTrace submits the cell as a traced job to an in-process
// rcast-serve instance and returns the stored trace artifact.
func serveTrace(req serve.JobRequest) ([]byte, error) {
	req.Trace = true
	s := serve.New(serve.Options{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	job, outcome, err := s.Submit(req)
	if err != nil || outcome != serve.OutcomeAccepted {
		return nil, fmt.Errorf("serve submit: outcome=%v err=%v", outcome, err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for !job.State().Terminal() {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("serve job did not finish in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := job.State(); st != serve.StateDone {
		return nil, fmt.Errorf("serve job finished %s", st)
	}
	data, captured := job.Trace()
	if !captured {
		return nil, fmt.Errorf("serve job captured no trace")
	}
	return data, nil
}
