package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const corpusDir = "../../testdata/corpus"

// copyCell clones one committed corpus cell into a throwaway corpus so a
// test can tamper with it without touching the goldens.
func copyCell(t *testing.T, name string) string {
	t.Helper()
	corpus := t.TempDir()
	dst := filepath.Join(corpus, name)
	if err := os.Mkdir(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(corpusDir, name))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(corpusDir, name, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return corpus
}

func runGate(t *testing.T, args ...string) (bool, string, error) {
	t.Helper()
	var out bytes.Buffer
	diverged, err := run(args, &out)
	return diverged, out.String(), err
}

// TestGateCleanCorpus is the CI contract's passing half: every committed
// cell re-runs and replays byte-identically at HEAD.
func TestGateCleanCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("re-runs the whole corpus")
	}
	diverged, out, err := runGate(t, "-corpus", corpusDir)
	if err != nil {
		t.Fatalf("gate error: %v", err)
	}
	if diverged {
		t.Fatalf("committed corpus diverges at HEAD:\n%s", out)
	}
	if got := strings.Count(out, " ok\n"); got < 8 {
		t.Fatalf("expected at least 8 cells, gate saw %d:\n%s", got, out)
	}
}

// TestGateFailsOnPlantedBehavioralChange is the failing half: a one-line
// change to the cell's behavior (here: the traffic rate, standing in for
// a code change at HEAD) must diverge from the golden trace, and the
// report must name the first differing event.
func TestGateFailsOnPlantedBehavioralChange(t *testing.T) {
	corpus := copyCell(t, "rcast_static")
	cellJSON := filepath.Join(corpus, "rcast_static", "cell.json")
	data, err := os.ReadFile(cellJSON)
	if err != nil {
		t.Fatal(err)
	}
	planted := strings.Replace(string(data), `"connections": 3`, `"connections": 4`, 1)
	if planted == string(data) {
		t.Fatal("plant failed: connections field not found")
	}
	if err := os.WriteFile(cellJSON, []byte(planted), 0o644); err != nil {
		t.Fatal(err)
	}
	diverged, out, err := runGate(t, "-corpus", corpus)
	if err != nil {
		t.Fatalf("gate error: %v", err)
	}
	if !diverged {
		t.Fatalf("planted behavioral change passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "first divergence at event") && !strings.Contains(out, "replay") {
		t.Fatalf("divergence report does not locate the first differing event:\n%s", out)
	}
}

// TestGateFailsOnTamperedGolden: flipping one recorded byte in the golden
// trace (the other direction HEAD drift can take) also fails the gate.
func TestGateFailsOnTamperedGolden(t *testing.T) {
	corpus := copyCell(t, "rcast_static")
	golden := filepath.Join(corpus, "rcast_static", "trace.ndjson")
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), "level=randomized sleep", "level=randomized stay-awake", 1)
	if tampered == string(data) {
		t.Fatal("tamper failed: no randomized-lottery sleep verdict in golden trace")
	}
	if err := os.WriteFile(golden, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	diverged, out, err := runGate(t, "-corpus", corpus)
	if err != nil {
		t.Fatalf("gate error: %v", err)
	}
	if !diverged {
		t.Fatalf("tampered golden passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "first divergence at event") {
		t.Fatalf("report does not name the first divergent event:\n%s", out)
	}
}

// TestUpdateRegeneratesGoldens: -update heals a drifted cell, after which
// the gate passes again.
func TestUpdateRegeneratesGoldens(t *testing.T) {
	corpus := copyCell(t, "serve_rcast")
	golden := filepath.Join(corpus, "serve_rcast", "trace.ndjson")
	if err := os.WriteFile(golden, []byte(`{"atMicros":0,"node":0,"kind":"bogus"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if diverged, out, err := runGate(t, "-corpus", corpus); err != nil || !diverged {
		t.Fatalf("stale golden not detected (diverged=%v err=%v):\n%s", diverged, err, out)
	}
	if diverged, out, err := runGate(t, "-corpus", corpus, "-update"); err != nil || diverged {
		t.Fatalf("-update failed (diverged=%v err=%v):\n%s", diverged, err, out)
	}
	if diverged, out, err := runGate(t, "-corpus", corpus); err != nil || diverged {
		t.Fatalf("gate still failing after -update (diverged=%v err=%v):\n%s", diverged, err, out)
	}
}

// TestGateUsageErrors pins the exit-2 error paths: a missing corpus and
// an unknown -cell name are errors, not divergences.
func TestGateUsageErrors(t *testing.T) {
	if _, _, err := runGate(t, "-corpus", filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing corpus accepted")
	}
	if _, _, err := runGate(t, "-corpus", corpusDir, "-cell", "no_such_cell"); err == nil {
		t.Fatal("unknown cell accepted")
	}
}
